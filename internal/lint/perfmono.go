package lint

// The perfmono analyzer turns the perf layer's "counters are monotone"
// guarantee from a golden-test observation into a compile-time property.
//
// The counter set is derived from the probe registry itself: every integer
// struct field read by a closure registered inside a buildProbes method
// (core/perf.go in the real tree) is a perf counter — m.perfJobs,
// m.rdPort.BeatsRead, a.Stats.Pairs, and so on. Any write to such a field
// in a function reachable from the simulator's exported API must then be
// monotone: ++ or += with an operand that is not provably negative. Plain
// assignment, --, -=, and += of a negative constant are flagged.
//
// Reset paths are exempt by annotation: methods named Reset or Clear, and
// functions whose doc comment carries a //vet:resetpath directive, may zero
// counters (the software-visible soft-reset contract). Operands whose sign
// the checker cannot prove (a variable, a call result) are accepted — the
// lenient-loader rule that missing information never flags.

import (
	"go/ast"
	"go/types"
	"sort"
)

// resetPathDirective marks a function as a sanctioned counter-reset path
// (the //vet:resetpath doc directive, parsed by directives.go).
const resetPathDirective = "resetpath"

// PerfMono returns the counter-monotonicity analyzer.
func PerfMono() *Analyzer {
	return &Analyzer{
		Name:     "perfmono",
		Doc:      "writes to perf-registered counter fields reachable from the simulator must be monotone (+=/++, non-negative) outside annotated reset paths",
		RunGraph: runPerfMono,
	}
}

// collectCounterFields walks every buildProbes method in the module and
// returns the Origin-normalized struct fields its registered closures read.
// Only basic integer leaves count: intermediate struct/pointer fields on the
// selector chain (m.rdPort in m.rdPort.BeatsRead) are not counters.
func collectCounterFields(pkgs []*Package) map[*types.Var]bool {
	counters := map[*types.Var]bool{}
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "buildProbes" || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(nd ast.Node) bool {
					lit, ok := nd.(*ast.FuncLit)
					if !ok {
						return true
					}
					ast.Inspect(lit.Body, func(inner ast.Node) bool {
						sel, ok := inner.(*ast.SelectorExpr)
						if !ok {
							return true
						}
						fv := fieldOf(p, sel)
						if fv == nil {
							return true
						}
						if basic, ok := fv.Type().Underlying().(*types.Basic); ok &&
							basic.Info()&types.IsInteger != 0 {
							counters[fv.Origin()] = true
						}
						return true
					})
					return true // nested closures share the same scan
				})
			}
		}
	}
	return counters
}

// fieldOf resolves a selector to the struct field it denotes, nil otherwise.
func fieldOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if fv, ok := s.Obj().(*types.Var); ok {
			return fv
		}
		return nil
	}
	if fv, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && fv.IsField() {
		return fv
	}
	return nil
}

// perfMonoRoots selects everything "the simulator" can run: the exported
// API of the cycle-stepped packages, Machine methods, and the exported API
// of any package that registers probes (covers fixtures, which load outside
// those import paths).
func perfMonoRoots(g *CallGraph, probePkgs map[string]bool) []*FuncNode {
	var roots []*FuncNode
	for _, n := range g.SortedNodes() {
		if n.Decl == nil || !n.Exported {
			continue
		}
		if isCycleSteppedPath(n.Pkg.ImportPath) || isMachineRecv(n.RecvType) ||
			probePkgs[n.Pkg.ImportPath] {
			roots = append(roots, n)
		}
	}
	return roots
}

// isResetPath reports whether writes in this node are sanctioned counter
// resets: the enclosing declaration is named Reset or Clear, or its doc
// comment carries //vet:resetpath.
func isResetPath(n *FuncNode) bool {
	rd := n.rootDecl()
	if rd == nil {
		return false
	}
	if rd.Name.Name == "Reset" || rd.Name.Name == "Clear" {
		return true
	}
	return HasDirective(rd.Doc, resetPathDirective)
}

func runPerfMono(g *CallGraph, pkgs []*Package) []Diagnostic {
	counters := collectCounterFields(pkgs)
	if len(counters) == 0 {
		return nil
	}
	probePkgs := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "buildProbes" {
					probePkgs[p.ImportPath] = true
				}
			}
		}
	}
	reach := Reach(perfMonoRoots(g, probePkgs))

	var out []Diagnostic
	for _, n := range reach.Sorted() {
		if isResetPath(n) {
			continue
		}
		chain := reach.Witness(n)
		for _, fw := range n.Effects.FieldWrites {
			if !counters[fw.Field] {
				continue
			}
			switch fw.Op {
			case "++":
				continue
			case "+=":
				if !fw.Negative {
					continue
				}
				out = append(out, diagAt(n.Pkg, fw.Pos,
					"perf counter %s decremented via += with a negative operand: counters are monotone outside Reset/Clear (reached via %s)",
					counterName(fw.Field), chain))
			case "--", "-=":
				out = append(out, diagAt(n.Pkg, fw.Pos,
					"perf counter %s decremented with %s: counters are monotone outside Reset/Clear (reached via %s)",
					counterName(fw.Field), fw.Op, chain))
			default:
				out = append(out, diagAt(n.Pkg, fw.Pos,
					"perf counter %s overwritten with %s: only ++ and += keep the counter monotone — move resets into a Reset/Clear method or a //vet:resetpath function (reached via %s)",
					counterName(fw.Field), fw.Op, chain))
			}
		}
	}
	return out
}

// counterName renders a counter field as Type.Field for diagnostics.
func counterName(fv *types.Var) string {
	name := fv.Name()
	if owner := fieldOwner(fv); owner != "" {
		name = owner + "." + name
	}
	return name
}

// fieldOwner finds the named struct type declaring a field, by scanning the
// field's package scope (go/types has no direct field-to-owner link).
func fieldOwner(fv *types.Var) string {
	pkg := fv.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, tn := range names {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Origin() == fv.Origin() {
				return obj.Name()
			}
		}
	}
	return ""
}
