package lint

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotallocFindings pins the hotalloc fixture: one finding per allocation
// kind reachable from the three root shapes plus the //vet:hotpath directive
// root, none from cold paths, exempt patterns, constants, unreached code, or
// the //vet:allow'd site.
func TestHotallocFindings(t *testing.T) {
	byName := dirDiags(t, "hotalloc")
	ds := byName["hotalloc"]
	if len(ds) != 17 {
		t.Fatalf("got %d hotalloc findings, want 17: %q", len(ds), messages(ds))
	}

	// One per classifier kind.
	wantContains(t, ds, "(make): make([]int)")
	wantContains(t, ds, "(new): new(hotalloc.Machine)")
	wantContains(t, ds, "(complit): []int{…}")
	wantContains(t, ds, "(complit): &hotalloc.Machine{…}")
	wantContains(t, ds, "(append-grow): append to m.buf")
	wantContains(t, ds, "boxed into any param of take")
	wantContains(t, ds, "boxed into any param of logf")
	wantContains(t, ds, "variadic ...any slice for logf")
	wantContains(t, ds, "(fmt): fmt.Sprintf")
	wantContains(t, ds, "(closure): func literal")
	wantContains(t, ds, "(closure): method value m.bump")
	wantContains(t, ds, "(string-conv): string -> []byte")
	wantContains(t, ds, "(map-write): write to m.seen")
	wantContains(t, ds, "append to p.tmp")
	// The //vet:hotpath directive root reaches its helper's append.
	wantContains(t, ds, "append to b.trace")
	// The witness-shaped directive root flags its reject-path append.
	wantContains(t, ds, "append to w.rejects")

	// Negative space: cold paths, exemptions, unreached code, waiver.
	wantNotContains(t, ds, "NewMachine")
	wantNotContains(t, ds, "Reset")
	wantNotContains(t, ds, "rebuild")
	wantNotContains(t, ds, "m.scratch")     // truncate-reset field exemption
	wantNotContains(t, ds, "append to tmp") // prealloc-local exemption
	wantNotContains(t, ds, "Score")         // allocates but is not hot
	wantNotContains(t, ds, "make([]byte)")  // waived by //vet:allow hotalloc
	wantNotContains(t, ds, "witnessReplay") // hot but allocation-free

	// Every finding carries a witness chain back to its root.
	for _, d := range ds {
		if !strings.Contains(d.Message, "reached via ") {
			t.Errorf("finding lacks a witness chain: %s", d.Message)
			continue
		}
		if !strings.Contains(d.Message, "Tick") &&
			!strings.Contains(d.Message, "Step") &&
			!strings.Contains(d.Message, "Align") &&
			!strings.Contains(d.Message, "admit") &&
			!strings.Contains(d.Message, "witnessGate") {
			t.Errorf("witness chain names no root: %s", d.Message)
		}
	}

	// The live //vet:allow hotalloc must not be reported stale.
	if stale := byName[suppressName]; len(stale) != 0 {
		t.Errorf("the live //vet:allow hotalloc was reported stale: %q", messages(stale))
	}
}

// TestHotallocWitnessChains asserts helper findings spell the full call
// chain, not just the endpoint.
func TestHotallocWitnessChains(t *testing.T) {
	ds := dirDiags(t, "hotalloc")["hotalloc"]
	var sawChain bool
	for _, d := range ds {
		if strings.Contains(d.Message, "(*Machine).Tick -> ") {
			sawChain = true
		}
	}
	if !sawChain {
		t.Errorf("no finding shows a Tick -> helper chain: %q", messages(ds))
	}
}

// TestDumpAllocsJSONStable builds the fixture graph twice and asserts the
// -dump-allocs artifact is byte-identical, carries the schema tag, the
// derived roots, hot/cold verdicts, and the exempt marking.
func TestDumpAllocsJSONStable(t *testing.T) {
	dir := filepath.Join("testdata", "src", "hotalloc")
	dump := func() []byte {
		t.Helper()
		p, err := LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir: %v", err)
		}
		out, err := DumpAllocsJSON(BuildCallGraph([]*Package{p}), dir)
		if err != nil {
			t.Fatalf("DumpAllocsJSON: %v", err)
		}
		return out
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Fatalf("two dumps differ:\n%s\nvs\n%s", a, b)
	}
	s := string(a)
	if !strings.Contains(s, `"schema": "wfasic-allocs-v1"`) {
		t.Errorf("dump lacks the schema tag:\n%s", s)
	}
	for _, root := range []string{"(*Machine).Tick", "(*Pipe).Step", "Align"} {
		if !strings.Contains(s, root) {
			t.Errorf("dump roots lack %s", root)
		}
	}
	if !strings.Contains(s, `"hot": true`) {
		t.Errorf("dump has no hot node")
	}
	if !strings.Contains(s, `"exempt": true`) {
		t.Errorf("dump does not mark the truncate-reset append exempt")
	}
	if !strings.Contains(s, `"witness"`) {
		t.Errorf("dump carries no witness chain")
	}
	// Score allocates but is cold: its node must appear without a hot flag.
	if !strings.Contains(s, "Score") {
		t.Errorf("dump omits the cold allocating function Score")
	}
}
