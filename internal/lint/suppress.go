package lint

import (
	"go/token"
	"sort"
)

const suppressName = "suppress"

// Suppress audits the //vet:allow comments themselves: a suppression that no
// longer masks any finding of its named analyzer is stale and fails the
// build, so waivers cannot outlive the code they excused. A comment naming an
// analyzer outside the suite is flagged as unknown (it masks nothing and
// never will).
//
// Unlike the other analyzers this one has no Run function: CheckModule
// evaluates it after every other finding exists, in two passes — ordinary
// comments first, then //vet:allow suppress comments (which may legitimately
// mask a stale finding reported by the first pass). With a partial -only set,
// comments naming an inactive analyzer are skipped rather than reported,
// since their findings were never computed.
func Suppress() *Analyzer {
	return &Analyzer{
		Name: suppressName,
		Doc:  "//vet:allow comments must still mask a finding; stale or unknown suppressions fail",
	}
}

// staleAllows returns a suppress finding for every unused comment. When
// suppressOnly is false it audits every comment except those naming the
// suppress analyzer; when true, only those (their used flags settle after the
// first pass's findings are filtered).
func staleAllows(ai *allowIndex, active map[string]bool, suppressOnly bool) []Diagnostic {
	known := map[string]bool{"*": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	for name := range active {
		known[name] = true
	}
	var out []Diagnostic
	for _, c := range ai.comments {
		if (c.name == suppressName) != suppressOnly {
			continue
		}
		if c.used {
			continue
		}
		pos := token.Position{Filename: c.file, Line: c.line, Column: c.col}
		if !known[c.name] {
			out = append(out, Diagnostic{Pos: pos, Message: "//vet:allow " + c.name +
				" names an unknown analyzer (run wfasic-vet -list); it can never mask a finding"})
			continue
		}
		if c.name != "*" && !active[c.name] {
			continue // analyzer not run this invocation: no verdict
		}
		out = append(out, Diagnostic{Pos: pos, Message: "stale //vet:allow " + c.name +
			": no finding on this line needs it any more — delete the comment"})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}
