package lint

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func loadCallGraphFixture(t *testing.T) (*Package, *CallGraph) {
	t.Helper()
	p, err := LoadDir(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return p, BuildCallGraph([]*Package{p})
}

// edgeKinds returns the kinds of every edge from the node whose ID has the
// given suffix to the node whose ID has the other suffix.
func edgeKinds(t *testing.T, g *CallGraph, fromSuffix, toSuffix string) []EdgeKind {
	t.Helper()
	from := nodeBySuffix(t, g, fromSuffix)
	var kinds []EdgeKind
	for _, e := range from.Calls {
		if strings.HasSuffix(e.Callee.ID, toSuffix) {
			kinds = append(kinds, e.Kind)
		}
	}
	return kinds
}

func nodeBySuffix(t *testing.T, g *CallGraph, suffix string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range g.SortedNodes() {
		if strings.HasSuffix(n.ID, suffix) {
			if found != nil {
				t.Fatalf("suffix %q matches both %s and %s", suffix, found.ID, n.ID)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node with suffix %q; have %d nodes", suffix, len(g.Nodes))
	}
	return found
}

func wantKind(t *testing.T, kinds []EdgeKind, want EdgeKind) {
	t.Helper()
	for _, k := range kinds {
		if k == want {
			return
		}
	}
	t.Errorf("edge kinds %v do not include %q", kinds, want)
}

// TestCallGraphIfaceDispatch: Drive's interface call fans out to both Step
// implementations via CHA.
func TestCallGraphIfaceDispatch(t *testing.T) {
	_, g := loadCallGraphFixture(t)
	wantKind(t, edgeKinds(t, g, ".Drive", "(*Even).Step"), EdgeIface)
	wantKind(t, edgeKinds(t, g, ".Drive", "(*Odd).Step"), EdgeIface)
}

// TestCallGraphFieldStore: Run's call through the stage field resolves to
// double, via the keyed composite-literal store in NewPipeline.
func TestCallGraphFieldStore(t *testing.T) {
	_, g := loadCallGraphFixture(t)
	wantKind(t, edgeKinds(t, g, "(*Pipeline).Run", ".double"), EdgeDyn)
}

// TestCallGraphMethodValue: Apply references s.add as a method value (ref
// edge) and the call through the local f resolves back to add (dyn edge).
func TestCallGraphMethodValue(t *testing.T) {
	_, g := loadCallGraphFixture(t)
	kinds := edgeKinds(t, g, ".Apply", "(*Sink).add")
	wantKind(t, kinds, EdgeRef)
	wantKind(t, kinds, EdgeDyn)
}

// TestCallGraphClosure: Bump owns its receiver-capturing literal as $1.
func TestCallGraphClosure(t *testing.T) {
	_, g := loadCallGraphFixture(t)
	wantKind(t, edgeKinds(t, g, "(*Box).Bump", "Bump$1"), EdgeClosure)
	n := nodeBySuffix(t, g, "Bump$1")
	if n.Parent == nil || !strings.HasSuffix(n.Parent.ID, "(*Box).Bump") {
		t.Errorf("closure parent = %v, want (*Box).Bump", n.Parent)
	}
}

// TestCallGraphDumpStable builds the graph twice from scratch and requires
// byte-identical dumps — the property CI relies on to diff callgraph.json.
func TestCallGraphDumpStable(t *testing.T) {
	_, g1 := loadCallGraphFixture(t)
	_, g2 := loadCallGraphFixture(t)
	d1, err := g1.DumpJSON("")
	if err != nil {
		t.Fatalf("DumpJSON: %v", err)
	}
	d2, err := g2.DumpJSON("")
	if err != nil {
		t.Fatalf("DumpJSON: %v", err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("two dumps differ:\n%s\nvs\n%s", d1, d2)
	}
	if !bytes.Contains(d1, []byte(`"schema": "wfasic-callgraph-v1"`)) {
		t.Errorf("dump lacks the schema marker:\n%.200s", d1)
	}
	if !bytes.Contains(d1, []byte(`"kind": "iface"`)) {
		t.Errorf("dump lacks iface edges")
	}
}

// TestCallGraphModule builds the graph over the real tree and spot-checks
// the load-bearing resolutions: Machine.Tick reaches the extractor tick
// statically, the probe registry's closures hang off buildProbes, and the
// PerfSource interface dispatch from the register file reaches
// Machine.PerfValue.
func TestCallGraphModule(t *testing.T) {
	pkgs, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	g := BuildCallGraph(pkgs)
	if len(g.Nodes) < 200 {
		t.Fatalf("module graph has only %d nodes; build is missing functions", len(g.Nodes))
	}
	tick := g.Nodes["repro/internal/core.(*Machine).Tick"]
	if tick == nil {
		t.Fatal("no node for core.(*Machine).Tick")
	}
	reach := Reach([]*FuncNode{tick})
	for _, want := range []string{
		"repro/internal/core.(*Extractor).Tick",
		"repro/internal/sim.(*FIFO).Tick",
		"repro/internal/mem.(*Controller).Tick",
	} {
		if n := g.Nodes[want]; n == nil {
			t.Errorf("no node %s", want)
		} else if !reach.Contains(n) {
			t.Errorf("%s not reachable from Machine.Tick", want)
		}
	}
	// PerfSource dispatch: the RegFile read path must fan out to the
	// Machine implementation via CHA.
	pv := g.Nodes["repro/internal/core.(*Machine).PerfValue"]
	if pv == nil {
		t.Fatal("no node for core.(*Machine).PerfValue")
	}
	found := false
	for _, n := range g.SortedNodes() {
		for _, e := range n.Calls {
			if e.Callee == pv && e.Kind == EdgeIface {
				found = true
			}
		}
	}
	if !found {
		t.Error("no iface edge into Machine.PerfValue (PerfSource CHA dispatch missing)")
	}
}
