package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, parsed and best-effort type-checked package. Type
// information is filled from a lenient check (stdlib imports are stubbed, all
// type errors ignored), so analyzers must treat missing entries in Info as
// "unknown", never as proof of absence.
type Package struct {
	// ImportPath is the module-qualified import path ("repro/internal/sim"),
	// or the directory path for packages loaded outside a module (fixtures).
	ImportPath string
	Dir        string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors records every error the lenient check swallowed. Stub-induced
	// errors (stdlib members are invisible) are expected and harmless; the list
	// exists so tests and debugging can tell "resolved cleanly" from "limped
	// through", not to gate analysis.
	TypeErrors []error
}

// pkgPathOf resolves an identifier used as a package qualifier (the `time`
// in `time.Now`) to its import path, or "" when the identifier is not a
// package name (shadowed, or a variable). Type info is preferred; when the
// lenient check could not resolve the identifier it falls back to the file's
// import table.
func (p *Package) pkgPathOf(file *ast.File, id *ast.Ident) string {
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return "" // resolved to something that is not a package
		}
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := stubName(path)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// versionSuffix matches major-version import path elements ("v2").
var versionSuffix = regexp.MustCompile(`^v[0-9]+$`)

// stubName guesses the package name of an import path ("math/rand/v2" is
// package rand).
func stubName(path string) string {
	elems := strings.Split(path, "/")
	name := elems[len(elems)-1]
	if versionSuffix.MatchString(name) && len(elems) > 1 {
		name = elems[len(elems)-2]
	}
	return name
}

// moduleImporter serves module-internal packages that were already checked
// and empty stubs for everything else (stdlib), keeping the suite free of
// any dependency beyond go/ast, go/parser and go/types.
type moduleImporter struct {
	checked map[string]*types.Package
	stubs   map[string]*types.Package
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.checked[path]; ok {
		return p, nil
	}
	if p, ok := im.stubs[path]; ok {
		return p, nil
	}
	p := types.NewPackage(path, stubName(path))
	p.MarkComplete()
	im.stubs[path] = p
	return p, nil
}

// pkgSrc is a parsed, not-yet-checked package directory.
type pkgSrc struct {
	importPath string
	dir        string
	name       string
	files      []*ast.File
	imports    []string // module-internal imports only
}

// parsePackageDir parses the non-test Go files of one directory.
func parsePackageDir(fset *token.FileSet, dir string) (*pkgSrc, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	src := &pkgSrc{dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if src.name == "" {
			src.name = f.Name.Name
		}
		if f.Name.Name != src.name {
			// Stray file from another package (e.g. an external test
			// package that escaped the _test filter); skip it.
			continue
		}
		src.files = append(src.files, f)
	}
	if len(src.files) == 0 {
		return nil, nil
	}
	return src, nil
}

// checkPackage runs the lenient type-check and wraps the result.
func checkPackage(fset *token.FileSet, imp *moduleImporter, src *pkgSrc) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer:                 imp,
		Error:                    func(err error) { typeErrs = append(typeErrs, err) }, // best-effort: keep going
		DisableUnusedImportCheck: true,
	}
	tpkg, _ := conf.Check(src.importPath, fset, src.files, info)
	return &Package{
		ImportPath: src.importPath,
		Dir:        src.dir,
		Name:       src.name,
		Fset:       fset,
		Files:      src.files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}
}

// LoadDir loads a single directory as one package with every import stubbed
// (used for analyzer fixtures under testdata).
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	src, err := parsePackageDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	src.importPath = filepath.ToSlash(dir)
	imp := &moduleImporter{checked: map[string]*types.Package{}, stubs: map[string]*types.Package{}}
	return checkPackage(fset, imp, src), nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadModule loads every package of the module rooted at root, type-checking
// module-internal packages in dependency order so cross-package types (for
// example core.RegFile seen from internal/soc) resolve for real; only the
// standard library is stubbed. Directories named testdata, hidden
// directories, and _-prefixed directories are skipped.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	return LoadTree(root, modPath)
}

// LoadTree loads every package under root as if root were the module root of
// modPath, with the same dependency-ordered lenient checking as LoadModule
// but without requiring a go.mod. Multi-package fixtures (for example the
// regmapdrv tree under testdata, whose soc package must see the fixture's
// core constants resolved for real) load through this entry point.
func LoadTree(root, modPath string) ([]*Package, error) {
	fset := token.NewFileSet()

	srcs := map[string]*pkgSrc{} // keyed by import path
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		src, err := parsePackageDir(fset, path)
		if err != nil {
			return err
		}
		if src == nil {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			src.importPath = modPath
		} else {
			src.importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		for _, f := range src.files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					src.imports = append(src.imports, ip)
				}
			}
		}
		srcs[src.importPath] = src
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topologically order module-internal dependencies (Go rejects import
	// cycles, so a cycle here only means a parse-level anomaly; those
	// packages are checked in arbitrary order with their deps stubbed).
	order := make([]string, 0, len(srcs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string)
	visit = func(ip string) {
		if state[ip] != 0 {
			return
		}
		state[ip] = 1
		if src, ok := srcs[ip]; ok {
			for _, dep := range src.imports {
				if state[dep] == 0 {
					visit(dep)
				}
			}
		}
		state[ip] = 2
		order = append(order, ip)
	}
	paths := make([]string, 0, len(srcs))
	for ip := range srcs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		visit(ip)
	}

	imp := &moduleImporter{checked: map[string]*types.Package{}, stubs: map[string]*types.Package{}}
	var pkgs []*Package
	for _, ip := range order {
		src, ok := srcs[ip]
		if !ok {
			continue
		}
		p := checkPackage(fset, imp, src)
		if p.Types != nil {
			imp.checked[ip] = p.Types
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
