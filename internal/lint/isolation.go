package lint

// The isolation analyzer proves the static precondition for fleet-parallel
// simulation (ROADMAP: N Machines on a goroutine pool with zero locks):
// starting from the exported API of the cycle-stepped packages, no reachable
// function may write a package-level variable, or read one that any non-init
// function in the module mutates. Reads of effectively-immutable globals
// (sentinel errors, lookup tables — written only at initialization) stay
// legal, otherwise nothing could return a named error.
//
// The serving packages are rooted too: wfasic-serve runs many devices and
// software workers concurrently inside one process, so everything reachable
// from its exported API needs the same freedom from package-level mutable
// state — all serving state must hang off the Server.
//
// Every diagnostic carries the call chain from a root, so a violation three
// calls deep is actionable without rerunning the analysis. Messages contain
// names only (no line numbers), keeping baseline entries stable across
// unrelated edits.

import (
	"fmt"
	"go/token"
)

// Isolation returns the fleet-isolation analyzer.
func Isolation() *Analyzer {
	return &Analyzer{
		Name:     "isolation",
		Doc:      "no function reachable from the cycle-stepped simulator API may touch package-level mutable state",
		RunGraph: runIsolation,
	}
}

// servingSuffixes are the fleet-concurrent serving packages. They are
// isolation roots (a Server races devices against software workers in one
// process) but deliberately NOT cycle-stepped: the serving layer lives on
// wall-clock time and goroutines, which the determinism analyzers ban.
var servingSuffixes = []string{
	"internal/serve",
}

// isolationRoots selects the entry points of the proof: every exported
// function and method of the cycle-stepped and serving packages, plus every
// exported method of a type named Machine in any package (so fixtures, which
// load under testdata-relative import paths, exercise the same root logic as
// the real core.Machine).
func isolationRoots(g *CallGraph) []*FuncNode {
	var roots []*FuncNode
	for _, n := range g.SortedNodes() {
		if n.Decl == nil || !n.Exported {
			continue
		}
		if isCycleSteppedPath(n.Pkg.ImportPath) || isServingPath(n.Pkg.ImportPath) ||
			isMachineRecv(n.RecvType) {
			roots = append(roots, n)
		}
	}
	return roots
}

func isServingPath(importPath string) bool {
	for _, suffix := range servingSuffixes {
		if importPath == suffix || hasPathSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

func isCycleSteppedPath(importPath string) bool {
	for _, suffix := range cycleSteppedSuffixes {
		if importPath == suffix || hasPathSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix)+1 && path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix
}

func isMachineRecv(recv string) bool {
	return recv == "Machine" || recv == "*Machine"
}

func runIsolation(g *CallGraph, pkgs []*Package) []Diagnostic {
	reach := Reach(isolationRoots(g))
	var out []Diagnostic
	for _, n := range reach.Sorted() {
		chain := reach.Witness(n)
		written := map[token.Pos]bool{}
		for _, gw := range dedupeUses(n.Effects.GlobalWrites) {
			written[gw.Pos] = true
			out = append(out, diagAt(n.Pkg, gw.Pos,
				"write to package-level %s breaks Machine fleet isolation (reached via %s)",
				GlobalName(gw.Var), chain))
		}
		for _, gr := range dedupeUses(n.Effects.GlobalReads) {
			if !g.MutatedGlobal(gr.Var) {
				continue // immutable after init: lookup table or sentinel
			}
			if written[gr.Pos] {
				continue // hits++ is read+write at one site; one finding is enough
			}
			out = append(out, diagAt(n.Pkg, gr.Pos,
				"read of mutable package-level %s breaks Machine fleet isolation (reached via %s)",
				GlobalName(gr.Var), chain))
		}
	}
	return out
}

// dedupeUses collapses repeated uses of one variable at one position (a
// compound assignment records both a read and a write there) while keeping
// distinct sites separate, so every site can carry its own //vet:allow.
func dedupeUses(uses []GlobalUse) []GlobalUse {
	type site struct {
		name string
		pos  token.Pos
	}
	seen := map[site]bool{}
	var out []GlobalUse
	for _, u := range uses {
		key := site{GlobalName(u.Var), u.Pos}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, u)
	}
	return out
}

// diagAt builds a Diagnostic at an explicit position (graph effects carry
// token.Pos, not nodes).
func diagAt(p *Package, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	}
}
