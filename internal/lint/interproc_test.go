package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestIsolationFindings pins the isolation fixture: the global write in
// record and the mutable-global read in lookup are flagged with witness
// chains from Tick; reads of the immutable Limits table and the unreachable
// Seed write stay quiet.
func TestIsolationFindings(t *testing.T) {
	ds := dirDiags(t, "isolation")["isolation"]
	if len(ds) != 2 {
		t.Fatalf("got %d isolation findings, want 2: %q", len(ds), messages(ds))
	}
	wantContains(t, ds, "write to package-level")
	wantContains(t, ds, ".hits")
	wantContains(t, ds, "read of mutable package-level")
	wantContains(t, ds, ".table")
	wantNotContains(t, ds, "Limits")
	for _, d := range ds {
		if !strings.Contains(d.Message, "Tick -> ") {
			t.Errorf("finding lacks a witness chain from Tick: %s", d.Message)
		}
	}
}

// TestIsolationServingRoots loads the serveiso fixture through LoadTree so
// its package path ends in internal/serve, and asserts the serving-path root
// rule reaches the global write below Submit — the fixture's Server is
// deliberately not named Machine, so no other root rule can find it — while
// the sentinel-error read stays legal.
func TestIsolationServingRoots(t *testing.T) {
	pkgs, err := LoadTree(filepath.Join("testdata", "src", "serveiso"), "serveiso")
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	var ds []Diagnostic
	for _, d := range CheckModule(pkgs, All()) {
		if d.Analyzer == "isolation" {
			ds = append(ds, d)
		}
	}
	if len(ds) != 1 {
		t.Fatalf("got %d isolation findings, want 1: %q", len(ds), messages(ds))
	}
	wantContains(t, ds, ".served")
	wantContains(t, ds, "Submit -> ")
	wantNotContains(t, ds, "ErrShed")
}

// TestDeepDeterminismFindings pins the deepdet fixture: the five helper
// offenses (wall clock, goroutine, global rand, rand constructor, mutating
// map range) each flag exactly once with a chain back to Tick; the
// unreached clock read stays quiet.
func TestDeepDeterminismFindings(t *testing.T) {
	byName := dirDiags(t, "deepdet")
	ds := byName["deepdeterminism"]
	if len(ds) != 5 {
		t.Fatalf("got %d deepdeterminism findings, want 5: %q", len(ds), messages(ds))
	}
	wantContains(t, ds, "time.Now")
	wantContains(t, ds, "goroutine launched")
	wantContains(t, ds, "rand.Intn")
	wantContains(t, ds, "rand.NewSource")
	wantContains(t, ds, "map iteration")
	for _, d := range ds {
		if !strings.Contains(d.Message, "Tick") {
			t.Errorf("finding lacks a witness chain from Tick: %s", d.Message)
		}
	}
	// The direct analyzer must not double-report these helpers (the package
	// is not cycle-stepped and the helpers are not Step methods).
	if direct := byName["determinism"]; len(direct) != 0 {
		t.Errorf("direct determinism double-reported deep findings: %q", messages(direct))
	}
}

// TestPerfMonoFindings pins the perfmono fixture: the four violation shapes
// in slip are flagged; monotone updates in Tick, the unregistered level
// field, Reset (by name) and scrub (//vet:resetpath) stay quiet.
func TestPerfMonoFindings(t *testing.T) {
	ds := dirDiags(t, "perfmono")["perfmono"]
	if len(ds) != 4 {
		t.Fatalf("got %d perfmono findings, want 4: %q", len(ds), messages(ds))
	}
	wantContains(t, ds, "decremented with --")
	wantContains(t, ds, "overwritten with =")
	wantContains(t, ds, "negative operand")
	wantContains(t, ds, "decremented with -=")
	wantNotContains(t, ds, "level")
	for _, d := range ds {
		if !strings.Contains(d.Message, "Tick -> ") {
			t.Errorf("finding lacks a witness chain from Tick: %s", d.Message)
		}
	}
}

// TestRegMapDriverCoverage loads the two-package regmapdrv fixture through
// LoadTree (cross-package resolution, as in the real module) and asserts
// the driver-coverage check fires for exactly the register the driver never
// touches.
func TestRegMapDriverCoverage(t *testing.T) {
	pkgs, err := LoadTree(filepath.Join("testdata", "src", "regmapdrv"), "regmapdrv")
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (core and soc)", len(pkgs))
	}
	byName := map[string][]Diagnostic{}
	for _, d := range CheckModule(pkgs, All()) {
		byName[d.Analyzer] = append(byName[d.Analyzer], d)
	}
	ds := byName["regmap"]
	if len(ds) != 1 {
		t.Fatalf("got %d regmap findings, want 1: %q", len(ds), messages(ds))
	}
	wantContains(t, ds, "RegPerfHi")
	wantContains(t, ds, "not exercised by the internal/soc driver")
	for name, other := range byName {
		if name != "regmap" && len(other) != 0 {
			t.Errorf("unexpected %s findings in regmapdrv fixture: %q", name, messages(other))
		}
	}
}
