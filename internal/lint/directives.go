package lint

// Shared parsing for the suite's //vet:<name> directive comments. Before this
// helper existed every consumer re-implemented the string surgery (the
// //vet:allow parser in CheckModule, the //vet:resetpath scan in perfmono),
// and the implementations had quietly diverged on whitespace handling. All
// directive recognition now goes through ParseDirective so a new directive
// (//vet:coldpath for the hotalloc analyzer) is one switch case, not a fourth
// parser.

import (
	"go/ast"
	"strings"
)

// Directive is one parsed //vet:<name> comment.
type Directive struct {
	// Name is the directive keyword: "allow", "resetpath", "coldpath",
	// "hotpath".
	Name string
	// Args are the whitespace-separated tokens after the keyword. For
	// //vet:allow the first arg names the analyzer and the rest is the
	// free-form reason.
	Args []string
}

// ParseDirective parses one comment's text. It accepts only the exact
// marker prefix "//vet:" (no space between // and vet, matching the
// convention of go:build and go:generate); anything else returns ok=false.
// A directive with no keyword ("//vet:") is not a directive.
func ParseDirective(text string) (Directive, bool) {
	rest, ok := strings.CutPrefix(text, "//")
	if !ok {
		return Directive{}, false
	}
	rest, ok = strings.CutPrefix(strings.TrimSpace(rest), "vet:")
	if !ok {
		return Directive{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Name: fields[0], Args: fields[1:]}, true
}

// AllowTarget returns the analyzer name an //vet:allow directive suppresses,
// or ok=false when d is not a well-formed allow ("//vet:allow" with no
// analyzer masks nothing).
func (d Directive) AllowTarget() (string, bool) {
	if d.Name != "allow" || len(d.Args) == 0 {
		return "", false
	}
	return d.Args[0], true
}

// HasDirective reports whether a doc comment group carries //vet:<name>.
// Used for the function-level markers: //vet:resetpath (perfmono) and
// //vet:coldpath / //vet:hotpath (hotalloc).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := ParseDirective(c.Text); ok && d.Name == name {
			return true
		}
	}
	return false
}
