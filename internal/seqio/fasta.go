package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// FASTARecord is one named sequence from a FASTA file.
type FASTARecord struct {
	Name string // header up to the first whitespace, without '>'
	Seq  []byte
}

// ReadFASTA parses a FASTA stream. Sequence lines are concatenated and
// upper-cased; empty lines are skipped. It performs no alphabet validation —
// unsupported bases ('N' etc.) are detected downstream by the Extractor,
// exactly as on the real SoC.
func ReadFASTA(r io.Reader) ([]FASTARecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []FASTARecord
	var cur *FASTARecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			name := strings.Fields(line[1:])
			if len(name) == 0 {
				return nil, fmt.Errorf("seqio: line %d: empty FASTA header", lineNo)
			}
			recs = append(recs, FASTARecord{Name: name[0]})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seqio: line %d: sequence data before any FASTA header", lineNo)
		}
		cur.Seq = append(cur.Seq, bytes.ToUpper([]byte(line))...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("seqio: no FASTA records found")
	}
	return recs, nil
}

// PairFASTA zips two FASTA record lists into an input set: record i of the
// query file aligns against record i of the text file.
func PairFASTA(queries, texts []FASTARecord) (*InputSet, error) {
	if len(queries) != len(texts) {
		return nil, fmt.Errorf("seqio: %d query records vs %d text records", len(queries), len(texts))
	}
	set := &InputSet{}
	for i := range queries {
		set.Pairs = append(set.Pairs, Pair{
			ID: uint32(i + 1),
			A:  queries[i].Seq,
			B:  texts[i].Seq,
		})
	}
	return set, nil
}

// WriteFASTA writes records in 70-column FASTA format.
func WriteFASTA(w io.Writer, recs []FASTARecord) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		for i := 0; i < len(rec.Seq); i += 70 {
			end := i + 70
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.Write(rec.Seq[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
