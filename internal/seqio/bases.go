// Package seqio implements the data representations that cross the
// CPU/accelerator boundary in the WFAsic SoC:
//
//   - the DNA base alphabet and its 2-bit encoding used inside the
//     accelerator's Input_Seq RAMs (Section 4.2 of the paper: "the Extractor
//     module maps each base of one byte to two bits, so the blocks of 16
//     bases fit in four bytes"),
//   - the main-memory input-set image made of 16-byte sections (one header
//     section per pair carrying the alignment ID and both lengths, then the
//     padded base bytes of each sequence),
//   - a plain-text pair format used by the command-line tools.
package seqio

import (
	"errors"
	"fmt"
)

// SectionBytes is the width of the AXI-Full data bus and therefore of every
// memory section, FIFO word and DMA beat in the design.
const SectionBytes = 16

// BasesPerWord is the number of 2-bit packed bases in one 4-byte Input_Seq
// RAM word.
const BasesPerWord = 16

// The supported alphabet. 'N' (unknown) bases are representable in byte form
// but are rejected by the accelerator's Extractor (Section 4.2).
const (
	BaseA byte = 'A'
	BaseC byte = 'C'
	BaseG byte = 'G'
	BaseT byte = 'T'
	BaseN byte = 'N'
)

// Alphabet is the set of bases the accelerator accepts, in code order.
var Alphabet = [4]byte{BaseA, BaseC, BaseG, BaseT}

// ErrUnsupportedBase reports a byte outside the accelerator's alphabet.
var ErrUnsupportedBase = errors.New("seqio: unsupported base")

// Code2Bit returns the 2-bit code of a base byte: A=0, C=1, G=2, T=3.
// Lowercase input is accepted. Any other byte (including 'N') is an error.
func Code2Bit(b byte) (uint8, error) {
	switch b {
	case 'A', 'a':
		return 0, nil
	case 'C', 'c':
		return 1, nil
	case 'G', 'g':
		return 2, nil
	case 'T', 't':
		return 3, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnsupportedBase, b) //vet:allow hotalloc error construction on the reject path only
}

// Base2Bit returns the base byte for a 2-bit code (only the low two bits are
// used).
func Base2Bit(code uint8) byte {
	return Alphabet[code&3]
}

// ValidateSequence checks every byte of s against the accelerator alphabet
// and returns the index of the first offending byte.
func ValidateSequence(s []byte) error {
	for i, b := range s {
		if _, err := Code2Bit(b); err != nil {
			return fmt.Errorf("seqio: position %d: %w", i, err) //vet:allow hotalloc error construction on the reject path only
		}
	}
	return nil
}

// PackWord packs up to 16 base bytes into one little-endian 4-byte Input_Seq
// RAM word: base i occupies bits [2i, 2i+2). Missing trailing bases pack as
// code 0.
func PackWord(bases []byte) (uint32, error) {
	if len(bases) > BasesPerWord {
		return 0, fmt.Errorf("seqio: PackWord got %d bases, max %d", len(bases), BasesPerWord) //vet:allow hotalloc error construction on the reject path only
	}
	var w uint32
	for i, b := range bases {
		code, err := Code2Bit(b)
		if err != nil {
			return 0, err
		}
		w |= uint32(code) << (2 * i)
	}
	return w, nil
}

// UnpackWord expands a packed word back into n base bytes (n <= 16).
func UnpackWord(w uint32, n int) []byte {
	if n > BasesPerWord {
		n = BasesPerWord
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = Base2Bit(uint8(w >> (2 * i)))
	}
	return out
}

// PackSequence packs a whole sequence into Input_Seq RAM words, 16 bases per
// word, with the final word zero-padded.
func PackSequence(s []byte) ([]uint32, error) {
	words := make([]uint32, 0, (len(s)+BasesPerWord-1)/BasesPerWord)
	return PackSequenceInto(words, s)
}

// PackSequenceInto is PackSequence appending into a caller-provided buffer
// (typically buf[:0] of a retained slice), so the steady-state load path can
// reuse one allocation across pairs.
func PackSequenceInto(words []uint32, s []byte) ([]uint32, error) {
	for i := 0; i < len(s); i += BasesPerWord {
		end := i + BasesPerWord
		if end > len(s) {
			end = len(s)
		}
		w, err := PackWord(s[i:end])
		if err != nil {
			return nil, fmt.Errorf("seqio: word %d: %w", len(words), err) //vet:allow hotalloc error construction on the reject path only
		}
		words = append(words, w) //vet:allow hotalloc appends into the caller's buffer, amortized across pairs
	}
	return words, nil
}

// UnpackSequence reverses PackSequence for a sequence of length n.
func UnpackSequence(words []uint32, n int) []byte {
	out := make([]byte, 0, n)
	for _, w := range words {
		take := n - len(out)
		if take <= 0 {
			break
		}
		if take > BasesPerWord {
			take = BasesPerWord
		}
		out = append(out, UnpackWord(w, take)...)
	}
	return out
}
