package seqio

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCode2Bit(t *testing.T) {
	for i, b := range Alphabet {
		code, err := Code2Bit(b)
		if err != nil || int(code) != i {
			t.Errorf("Code2Bit(%c) = %d, %v", b, code, err)
		}
		if Base2Bit(code) != b {
			t.Errorf("Base2Bit(%d) = %c want %c", code, Base2Bit(code), b)
		}
	}
	lower := []byte("acgt")
	for i, b := range lower {
		code, err := Code2Bit(b)
		if err != nil || int(code) != i {
			t.Errorf("Code2Bit(%c) = %d, %v", b, code, err)
		}
	}
	for _, bad := range []byte{'N', 'n', 'U', ' ', 0} {
		if _, err := Code2Bit(bad); err == nil {
			t.Errorf("Code2Bit(%q) accepted", bad)
		}
	}
}

func TestPackUnpackWord(t *testing.T) {
	seq := []byte("ACGTACGTACGTACGT")
	w, err := PackWord(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got := UnpackWord(w, 16); !bytes.Equal(got, seq) {
		t.Fatalf("round trip: %s", got)
	}
	// Partial word.
	w, err = PackWord([]byte("TG"))
	if err != nil {
		t.Fatal(err)
	}
	if got := UnpackWord(w, 2); !bytes.Equal(got, []byte("TG")) {
		t.Fatalf("partial round trip: %s", got)
	}
	if _, err := PackWord(bytes.Repeat([]byte("A"), 17)); err == nil {
		t.Error("PackWord accepted 17 bases")
	}
	if _, err := PackWord([]byte("AN")); err == nil {
		t.Error("PackWord accepted N")
	}
}

func TestPackSequenceRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		n := r.IntN(500)
		seq := make([]byte, n)
		for i := range seq {
			seq[i] = Alphabet[r.IntN(4)]
		}
		words, err := PackSequence(seq)
		if err != nil {
			return false
		}
		if len(words) != (n+15)/16 {
			return false
		}
		return bytes.Equal(UnpackSequence(words, n), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundReadLen(t *testing.T) {
	cases := map[int]int{0: 16, 1: 16, 16: 16, 17: 32, 9010: 9024, 10000: 10000}
	for in, want := range cases {
		if got := RoundReadLen(in); got != want {
			t.Errorf("RoundReadLen(%d)=%d want %d", in, got, want)
		}
	}
}

func TestImageRoundTrip(t *testing.T) {
	set := &InputSet{Pairs: []Pair{
		{ID: 7, A: []byte("ACGT"), B: []byte("ACGTT")},
		{ID: 8, A: []byte("GGGG"), B: []byte("G")},
		{ID: 900000, A: bytes.Repeat([]byte("ACGT"), 25), B: bytes.Repeat([]byte("TGCA"), 24)},
	}}
	img, err := set.BuildImage()
	if err != nil {
		t.Fatal(err)
	}
	ml := set.EffectiveMaxReadLen()
	if ml != 112 {
		t.Fatalf("EffectiveMaxReadLen=%d want 112", ml)
	}
	if len(img) != set.ImageBytes() {
		t.Fatalf("image %dB, ImageBytes says %d", len(img), set.ImageBytes())
	}
	back, err := ParseImage(img, ml, len(set.Pairs))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range set.Pairs {
		q := back.Pairs[i]
		if q.ID != p.ID || !bytes.Equal(q.A, p.A) || !bytes.Equal(q.B, p.B) {
			t.Errorf("pair %d: got %+v want %+v", i, q, p)
		}
	}
}

func TestImageSectionLayout(t *testing.T) {
	// One pair, MAX_READ_LEN 16: header + 1 section per sequence.
	set := &InputSet{Pairs: []Pair{{ID: 3, A: []byte("AC"), B: []byte("GT")}}, MaxReadLen: 16}
	img, err := set.BuildImage()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 3*SectionBytes {
		t.Fatalf("image %dB want %d", len(img), 3*SectionBytes)
	}
	if img[0] != 3 || img[4] != 2 || img[8] != 2 {
		t.Fatalf("header bytes wrong: % x", img[:16])
	}
	if img[16] != 'A' || img[17] != 'C' || img[18] != DummyBase {
		t.Fatalf("sequence a section wrong: % x", img[16:32])
	}
	if img[32] != 'G' || img[33] != 'T' {
		t.Fatalf("sequence b section wrong: % x", img[32:48])
	}
}

func TestImageOverLengthPreservesDeclaredLength(t *testing.T) {
	long := bytes.Repeat([]byte("A"), 40)
	set := &InputSet{Pairs: []Pair{{ID: 1, A: long, B: []byte("ACGT")}}, MaxReadLen: 16}
	img, err := set.BuildImage()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseImage(img, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pairs[0].A) != 40 {
		t.Fatalf("declared length lost: %d", len(back.Pairs[0].A))
	}
}

func TestParseImageErrors(t *testing.T) {
	if _, err := ParseImage(make([]byte, 10), 16, 1); err == nil {
		t.Error("short image accepted")
	}
	if _, err := ParseImage(make([]byte, 160), 15, 1); err == nil {
		t.Error("unaligned MAX_READ_LEN accepted")
	}
}

func TestPairsTextRoundTrip(t *testing.T) {
	set := &InputSet{Pairs: []Pair{
		{ID: 0, A: []byte("ACGT"), B: []byte("AGT")},
		{ID: 12, A: []byte("T"), B: []byte("T")},
	}}
	var buf bytes.Buffer
	if err := WritePairs(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pairs) != 2 {
		t.Fatalf("got %d pairs", len(back.Pairs))
	}
	for i := range set.Pairs {
		if back.Pairs[i].ID != set.Pairs[i].ID ||
			!bytes.Equal(back.Pairs[i].A, set.Pairs[i].A) ||
			!bytes.Equal(back.Pairs[i].B, set.Pairs[i].B) {
			t.Errorf("pair %d mismatch", i)
		}
	}
	// Comments and blank lines are skipped; malformed lines rejected.
	if _, err := ReadPairs(bytes.NewBufferString("# comment\n\n1\tACGT\tAC\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPairs(bytes.NewBufferString("1,ACGT,AC\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestPairSections(t *testing.T) {
	if got := PairSections(10000); got != 1+2*625 {
		t.Fatalf("PairSections(10000)=%d", got)
	}
	if got := PairSections(16); got != 3 {
		t.Fatalf("PairSections(16)=%d", got)
	}
}
