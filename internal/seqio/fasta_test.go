package seqio

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFASTA(t *testing.T) {
	in := strings.NewReader(`>read1 some description
ACGTACGT
acgt

>read2
TTTT
`)
	recs, err := ReadFASTA(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Name != "read1" || string(recs[0].Seq) != "ACGTACGTACGT" {
		t.Fatalf("record 0: %+v", recs[0])
	}
	if recs[1].Name != "read2" || string(recs[1].Seq) != "TTTT" {
		t.Fatalf("record 1: %+v", recs[1])
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">\nACGT\n")); err == nil {
		t.Error("empty header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	recs := []FASTARecord{
		{Name: "a", Seq: bytes.Repeat([]byte("ACGT"), 40)},
		{Name: "b", Seq: []byte("T")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if back[i].Name != recs[i].Name || !bytes.Equal(back[i].Seq, recs[i].Seq) {
			t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
}

func TestPairFASTA(t *testing.T) {
	q := []FASTARecord{{Name: "q1", Seq: []byte("AC")}, {Name: "q2", Seq: []byte("GT")}}
	x := []FASTARecord{{Name: "t1", Seq: []byte("ACC")}, {Name: "t2", Seq: []byte("GTT")}}
	set, err := PairFASTA(q, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Pairs) != 2 || set.Pairs[0].ID != 1 || string(set.Pairs[1].B) != "GTT" {
		t.Fatalf("set: %+v", set.Pairs)
	}
	if _, err := PairFASTA(q, x[:1]); err == nil {
		t.Error("mismatched record counts accepted")
	}
}
