// Witness tests live in an external package so they can drive the image
// builder with seqgen's paper profiles (seqgen imports seqio, so an internal
// test would be an import cycle).
package seqio_test

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"repro/internal/seqgen"
	"repro/internal/seqio"
)

func buildProfileImage(t *testing.T, p seqgen.Profile, seed uint64) (*seqio.InputSet, []byte, int) {
	t.Helper()
	set := seqgen.New(seed, seed^0xD1CE).Set(p)
	img, err := set.BuildImage()
	if err != nil {
		t.Fatalf("%s: BuildImage: %v", p.Name, err)
	}
	return set, img, set.EffectiveMaxReadLen()
}

// TestBuildImageStoresWitnesses pins the build-side half of the input
// defense: every pair block of a built image carries a nonzero stored
// witness at WitnessOff that matches the recomputed PairWitness, and a clean
// image audits clean.
func TestBuildImageStoresWitnesses(t *testing.T) {
	set, img, maxReadLen := buildProfileImage(t, seqgen.Profile{
		Name: "w", Length: 200, ErrorRate: 0.08, NumPairs: 6,
	}, 11)
	stride := seqio.PairSections(maxReadLen) * seqio.SectionBytes
	for i := range set.Pairs {
		block := img[i*stride : (i+1)*stride]
		stored := binary.LittleEndian.Uint32(block[seqio.WitnessOff : seqio.WitnessOff+4])
		if stored == 0 {
			t.Fatalf("pair %d: builder left the witness absent", i)
		}
		if got := seqio.PairWitness(block); got != stored {
			t.Fatalf("pair %d: stored witness %#x, recomputed %#x", i, stored, got)
		}
	}
	if bad := seqio.AuditImage(img, maxReadLen, len(set.Pairs)); bad != nil {
		t.Fatalf("clean image failed the audit: pairs %v", bad)
	}
}

// TestAuditImageCatchesRandomFlips is the input-witness property across the
// six paper profiles: flip one seeded-random bit anywhere in a built image —
// header, witness field or payload — and the audit flags exactly the struck
// pair. (The exhaustive every-bit sweep lives at the driver level in
// internal/soc's TestInputWitnessCatchesEverySingleBitFlip; this test covers
// the paper's full length/error-rate envelope instead.)
func TestAuditImageCatchesRandomFlips(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for pi, p := range seqgen.PaperSets(2) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			set, img, maxReadLen := buildProfileImage(t, p, uint64(pi)+1)
			stride := seqio.PairSections(maxReadLen) * seqio.SectionBytes
			rng := rand.New(rand.NewPCG(uint64(pi), 0xF11B))
			for trial := 0; trial < trials; trial++ {
				bit := rng.IntN(stride * len(set.Pairs) * 8)
				pair := bit / 8 / stride
				flipped := append([]byte(nil), img...)
				flipped[bit/8] ^= 1 << (bit % 8)
				block := flipped[pair*stride : (pair+1)*stride]
				if binary.LittleEndian.Uint32(block[seqio.WitnessOff:seqio.WitnessOff+4]) == 0 {
					// The flip forged the "no witness" sentinel — the
					// documented 2^-32 soundness gap. Redraw.
					trial--
					continue
				}
				bad := seqio.AuditImage(flipped, maxReadLen, len(set.Pairs))
				if len(bad) != 1 || bad[0] != pair {
					t.Fatalf("trial %d: flip of bit %d in pair %d audited as %v",
						trial, bit, pair, bad)
				}
			}
		})
	}
}

var auditSink []int

// TestWitnessAuditZeroAllocs pins the readback audit's steady state at zero
// allocations: PairWitness is pure arithmetic over the block, and a clean
// AuditImage returns nil without ever growing a slice — the driver runs it
// after every job, so it must be free.
func TestWitnessAuditZeroAllocs(t *testing.T) {
	set, img, maxReadLen := buildProfileImage(t, seqgen.Profile{
		Name: "w", Length: 150, ErrorRate: 0.05, NumPairs: 4,
	}, 23)
	stride := seqio.PairSections(maxReadLen) * seqio.SectionBytes
	block := img[:stride]
	if allocs := testing.AllocsPerRun(2000, func() {
		sinkU32 = seqio.PairWitness(block)
	}); allocs != 0 {
		t.Errorf("PairWitness: %.1f allocs per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		auditSink = seqio.AuditImage(img, maxReadLen, len(set.Pairs))
	}); allocs != 0 {
		t.Errorf("clean AuditImage: %.1f allocs per call, want 0", allocs)
	}
}

var sinkU32 uint32
