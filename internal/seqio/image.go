package seqio

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/integrity"
)

// Pair is one input to the accelerator: an alignment ID unique within the
// input set and the two sequences to align.
type Pair struct {
	ID uint32
	A  []byte // query (vertical axis of the DP-matrix)
	B  []byte // text  (horizontal axis of the DP-matrix)
}

// InputSet is an ordered collection of pairs sharing one MAX_READ_LEN.
type InputSet struct {
	Pairs      []Pair
	MaxReadLen int // divisible by 16; 0 means "compute from the pairs"
}

// ErrBadImage reports a malformed main-memory input image.
var ErrBadImage = errors.New("seqio: malformed input image")

// DummyBase is the byte used to pad sequences up to MAX_READ_LEN. The
// Extractor ignores padding (it knows the true lengths from the header), so
// any in-alphabet byte works; 'A' keeps padded images valid 2-bit data.
const DummyBase = BaseA

// RoundReadLen rounds n up to the next multiple of 16, the MAX_READ_LEN
// divisibility rule of Section 4.2.
func RoundReadLen(n int) int {
	if n <= 0 {
		return SectionBytes
	}
	return (n + SectionBytes - 1) / SectionBytes * SectionBytes
}

// ComputeMaxReadLen returns the smallest legal MAX_READ_LEN for the set.
func (s *InputSet) ComputeMaxReadLen() int {
	longest := 0
	for _, p := range s.Pairs {
		if len(p.A) > longest {
			longest = len(p.A)
		}
		if len(p.B) > longest {
			longest = len(p.B)
		}
	}
	return RoundReadLen(longest)
}

// EffectiveMaxReadLen resolves the set's MAX_READ_LEN: the explicit value if
// set, otherwise the computed minimum.
func (s *InputSet) EffectiveMaxReadLen() int {
	if s.MaxReadLen > 0 {
		return s.MaxReadLen
	}
	return s.ComputeMaxReadLen()
}

// PairSections returns the number of 16-byte memory sections one pair
// occupies in the input image for a given MAX_READ_LEN: one header section
// (ID, len a, len b) plus the padded bases of both sequences at one byte per
// base.
func PairSections(maxReadLen int) int {
	return 1 + 2*(maxReadLen/SectionBytes)
}

// ImageBytes returns the total size in bytes of the input image for the set.
func (s *InputSet) ImageBytes() int {
	return len(s.Pairs) * PairSections(s.EffectiveMaxReadLen()) * SectionBytes
}

// WitnessOff is the byte offset of the CRC32C integrity witness inside a
// pair's header section (the 4 bytes that were a zero pad before the
// integrity layer). A stored witness of 0 means "absent" — images built by
// hand or by older builders skip the check — which leaves a deliberate
// 2^-32 soundness gap documented on PairWitness.
const WitnessOff = 12

// PairWitness computes the CRC32C integrity witness of one serialized pair
// block (header section plus both padded payload sections) with the witness
// field itself taken as zero. BuildImage stores it at WitnessOff; the
// Extractor recomputes it at ingest and the resilient driver re-checks it in
// the post-job readback audit. The zero value doubles as the "no witness"
// sentinel, so an image whose payload happens to checksum to 0 is serialized
// unprotected (probability 2^-32 per pair — accepted and documented rather
// than special-cased).
//
//vet:hotpath
func PairWitness(block []byte) uint32 {
	crc := integrity.CRC(block[:WitnessOff])
	crc = integrity.CRCUpdate(crc, witnessZero[:])
	return integrity.CRCUpdate(crc, block[WitnessOff+4:])
}

// witnessZero stands in for the witness field when hashing around it. It is
// package-level (not a local) because the CRC parameter leaks in escape
// analysis, and a local array would be heap-allocated on every call —
// TestWitnessAuditZeroAllocs pins the audit at zero.
var witnessZero [4]byte

// AuditImage re-verifies the per-pair witnesses of a serialized image (the
// resilient driver's post-job readback audit): it returns the indices of
// pairs whose stored witness is nonzero and does not match the recomputed
// value. A nil return means the image is clean, so the steady-state audit
// allocates nothing.
func AuditImage(img []byte, maxReadLen, numPairs int) []int {
	stride := PairSections(maxReadLen) * SectionBytes
	var bad []int
	for i := 0; i < numPairs && (i+1)*stride <= len(img); i++ {
		block := img[i*stride : (i+1)*stride]
		want := binary.LittleEndian.Uint32(block[WitnessOff : WitnessOff+4])
		if want != 0 && PairWitness(block) != want {
			bad = append(bad, i)
		}
	}
	return bad
}

// BuildImage serializes the set into the main-memory layout the accelerator's
// DMA reads (Section 4.2):
//
//	section 0:  ID (4B LE) | len a (4B LE) | len b (4B LE) | 4B CRC32C witness
//	sections 1..:  sequence a bases, one byte each, padded to MAX_READ_LEN
//	sections ..:   sequence b bases, likewise
//
// The witness (see PairWitness) covers the rest of the pair block; the
// hardware model checks it at ingest and flags mismatching pairs
// unsupported, so a bit flip between job build and the Input_Seq RAMs can
// never produce a plausible wrong answer.
//
// Sequences longer than MAX_READ_LEN and 'N' bases are serialized as-is: the
// *Extractor* is responsible for detecting unsupported reads and reporting
// Success=0 (Section 4.2), so the image builder must not reject them.
func (s *InputSet) BuildImage() ([]byte, error) {
	ml := s.EffectiveMaxReadLen()
	if ml%SectionBytes != 0 {
		return nil, fmt.Errorf("seqio: MAX_READ_LEN %d not divisible by %d", ml, SectionBytes)
	}
	img := make([]byte, 0, s.ImageBytes())
	for _, p := range s.Pairs {
		start := len(img)
		var hdr [SectionBytes]byte
		binary.LittleEndian.PutUint32(hdr[0:4], p.ID)
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(p.A)))
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(p.B)))
		img = append(img, hdr[:]...)
		for _, seq := range [][]byte{p.A, p.B} {
			if len(seq) > ml {
				// Over-length read: serialize the truncated body; the header
				// still carries the true length so the Extractor can flag it.
				seq = seq[:ml]
			}
			img = append(img, seq...)
			for i := len(seq); i < ml; i++ {
				img = append(img, DummyBase)
			}
		}
		binary.LittleEndian.PutUint32(img[start+WitnessOff:start+WitnessOff+4], PairWitness(img[start:]))
	}
	return img, nil
}

// ParseImage reverses BuildImage given the MAX_READ_LEN the image was built
// with and the number of pairs it contains.
func ParseImage(img []byte, maxReadLen, numPairs int) (*InputSet, error) {
	if maxReadLen%SectionBytes != 0 {
		return nil, fmt.Errorf("%w: MAX_READ_LEN %d not divisible by %d", ErrBadImage, maxReadLen, SectionBytes)
	}
	stride := PairSections(maxReadLen) * SectionBytes
	if len(img) < stride*numPairs {
		return nil, fmt.Errorf("%w: image %dB, need %dB for %d pairs", ErrBadImage, len(img), stride*numPairs, numPairs)
	}
	set := &InputSet{MaxReadLen: maxReadLen}
	for i := 0; i < numPairs; i++ {
		rec := img[i*stride : (i+1)*stride]
		id := binary.LittleEndian.Uint32(rec[0:4])
		la := int(binary.LittleEndian.Uint32(rec[4:8]))
		lb := int(binary.LittleEndian.Uint32(rec[8:12]))
		body := rec[SectionBytes:]
		takeA, takeB := la, lb
		if takeA > maxReadLen {
			takeA = maxReadLen
		}
		if takeB > maxReadLen {
			takeB = maxReadLen
		}
		a := make([]byte, takeA)
		copy(a, body[:takeA])
		b := make([]byte, takeB)
		copy(b, body[maxReadLen:maxReadLen+takeB])
		p := Pair{ID: id, A: a, B: b}
		// Preserve declared over-length so unsupported-read detection
		// downstream still sees the true length.
		if la > maxReadLen {
			p.A = append(p.A, make([]byte, la-maxReadLen)...)
			for j := takeA; j < la; j++ {
				p.A[j] = DummyBase
			}
		}
		if lb > maxReadLen {
			p.B = append(p.B, make([]byte, lb-maxReadLen)...)
			for j := takeB; j < lb; j++ {
				p.B[j] = DummyBase
			}
		}
		set.Pairs = append(set.Pairs, p)
	}
	return set, nil
}
