package seqio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePairs writes the set in a simple line-oriented text format consumed by
// the command-line tools: one pair per line, "id<TAB>seqA<TAB>seqB".
// Lines starting with '#' are comments.
func WritePairs(w io.Writer, set *InputSet) error {
	bw := bufio.NewWriter(w)
	for _, p := range set.Pairs {
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\n", p.ID, p.A, p.B); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPairs parses the format written by WritePairs.
func ReadPairs(r io.Reader) (*InputSet, error) {
	set := &InputSet{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("seqio: line %d: want 3 tab-separated fields, got %d", lineNo, len(fields))
		}
		id, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("seqio: line %d: bad id: %w", lineNo, err)
		}
		set.Pairs = append(set.Pairs, Pair{
			ID: uint32(id),
			A:  []byte(strings.ToUpper(fields[1])),
			B:  []byte(strings.ToUpper(fields[2])),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}
