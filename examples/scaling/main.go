// Multi-Aligner scaling: the Figure 10 experiment in miniature — sweep the
// number of Aligner modules and watch the speedup saturate at the
// Equation 7 bound once the accelerator becomes DMA-bound.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/seqgen"
	"repro/internal/soc"
)

func main() {
	profile := seqgen.Profile{Name: "1K-10%", Length: 1000, ErrorRate: 0.10, NumPairs: 24}
	base := core.ChipConfig()
	set := bench.InputSetFor(profile, base.MaxReadLenCap)

	fmt.Printf("input: %d pairs of %s\n\n", len(set.Pairs), profile.Name)
	fmt.Printf("%10s %14s %10s\n", "aligners", "total cycles", "speedup")

	var baseline int64
	for n := 1; n <= 6; n++ {
		cfg := core.ChipConfig()
		cfg.NumAligners = n
		system, err := soc.New(cfg, 64<<20)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := system.RunAccelerated(set, soc.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if n == 1 {
			baseline = rep.AccelCycles
			var alignSum, readSum int64
			for _, tm := range rep.PairTimings {
				alignSum += tm.AlignCycles
				readSum += tm.ReadingCycles
			}
			k := int64(len(rep.PairTimings))
			fmt.Printf("%10d %14d %9.2fx   (Equation 7 bound: %d aligners)\n",
				n, rep.AccelCycles, 1.0,
				bench.MaxEfficientAligners(alignSum/k, readSum/k))
			continue
		}
		fmt.Printf("%10d %14d %9.2fx\n", n, rep.AccelCycles,
			float64(baseline)/float64(rep.AccelCycles))
	}
	fmt.Println("\nlong reads scale nearly ideally; short reads saturate much earlier")
	fmt.Println("because reading N pairs costs more than computing them (Section 5.3).")
}
