// Long-read batch alignment: the paper's target workload — third-generation
// 10K-base reads — aligned in batch on the simulated accelerator, with the
// per-pair cycle accounting of Table 1 and the GCUPS figures of Table 2.
//
//	go run ./examples/longread
package main

import (
	"fmt"
	"log"

	"repro/internal/asicmodel"
	"repro/internal/core"
	"repro/internal/seqgen"
	"repro/internal/seqio"
	"repro/internal/soc"
)

func main() {
	cfg := core.ChipConfig()

	// Generate a small batch of 10K-base pairs at 5% error rate (the
	// Section 5.3 methodology), capped at the hardware read-length limit.
	g := seqgen.New(2024, 7)
	set := &seqio.InputSet{}
	const pairs = 4
	for i := 0; i < pairs; i++ {
		p := g.Pair(uint32(i+1), 10000, 0.05)
		if len(p.A) > cfg.MaxReadLenCap {
			p.A = p.A[:cfg.MaxReadLenCap]
		}
		if len(p.B) > cfg.MaxReadLenCap {
			p.B = p.B[:cfg.MaxReadLenCap]
		}
		set.Pairs = append(set.Pairs, p)
	}

	system, err := soc.New(cfg, 256<<20)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := system.RunAccelerated(set, soc.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-pair accelerator cycles (compare with Table 1's 10K-5% row):")
	fmt.Printf("%6s %10s %12s %10s\n", "pair", "read cyc", "align cyc", "score")
	var equivCells int64
	for i, tm := range rep.PairTimings {
		fmt.Printf("%6d %10d %12d %10d\n", tm.ID, tm.ReadingCycles, tm.AlignCycles, tm.Score)
		p := set.Pairs[i]
		equivCells += asicmodel.EquivalentCells(len(p.A), len(p.B))
	}

	ph := asicmodel.Model(cfg)
	seconds := float64(rep.AccelCycles) / (ph.FreqGHz * 1e9)
	fmt.Printf("\nbatch: %d pairs in %d cycles (%.1f us at the modeled %.2f GHz ASIC clock)\n",
		pairs, rep.AccelCycles, seconds*1e6, ph.FreqGHz)
	fmt.Printf("throughput: %.0f GCUPS without backtrace (paper's Table 2: 390)\n",
		asicmodel.GCUPS(equivCells, seconds))
	fmt.Printf("area efficiency: %.0f GCUPS/mm^2 on %.1f mm^2 (paper: 244 on 1.6 mm^2)\n",
		asicmodel.GCUPS(equivCells, seconds)/ph.AreaMM2, ph.AreaMM2)
}
