// Co-design walkthrough: drive the accelerator by hand through the
// register-level driver API (Section 3) — build the main-memory input image,
// program the memory-mapped registers, start the job, wait for the
// interrupt, and decode the raw result region — exactly what a Linux driver
// plus a userspace library do on the real SoC.
//
//	go run ./examples/codesign
package main

import (
	"fmt"
	"log"

	"repro/internal/bt"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/seqgen"
	"repro/internal/seqio"
	"repro/internal/soc"
)

func main() {
	cfg := core.ChipConfig()
	system, err := soc.New(cfg, 128<<20)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (Figure 4): "the CPU parses the input data and stores them in
	// the main memory" — one pair with an intentional 'N' to show the
	// unsupported-read path, plus two good pairs.
	g := seqgen.New(99, 100)
	bad := g.Pair(2, 500, 0.05)
	bad.A[123] = 'N'
	set := &seqio.InputSet{Pairs: []seqio.Pair{
		g.Pair(1, 500, 0.05),
		bad,
		g.Pair(3, 500, 0.10),
	}}
	img, err := set.BuildImage()
	if err != nil {
		log.Fatal(err)
	}
	const inputAddr = 0x1000
	outputAddr := uint64(inputAddr+len(img)+15) &^ 15
	system.Memory.Write(inputAddr, img)
	fmt.Printf("input image: %d pairs, %d bytes at %#x (MAX_READ_LEN=%d)\n",
		len(set.Pairs), len(img), inputAddr, set.EffectiveMaxReadLen())

	// Step 2: program the memory-mapped registers over AXI-Lite and start.
	drv := system.Driver
	if err := drv.Configure(soc.JobConfig{
		InputAddr:  inputAddr,
		OutputAddr: outputAddr,
		NumPairs:   len(set.Pairs),
		MaxReadLen: set.EffectiveMaxReadLen(),
		Backtrace:  true,
		EnableIRQ:  true,
	}); err != nil {
		log.Fatal(err)
	}
	if err := drv.Start(); err != nil {
		log.Fatal(err)
	}

	// Step 3: the accelerator reads via DMA, aligns and streams results;
	// the CPU waits for the completion interrupt.
	cycles, err := drv.WaitIRQ(1_000_000_000)
	if err != nil {
		log.Fatal(err)
	}
	count, err := drv.OutCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job done in %d cycles; accelerator wrote %d transactions\n", cycles, count)

	// Step 4: the CPU performs the backtrace from the raw result region
	// (single-Aligner method: no data separation, boundary jumps only).
	raw := system.Memory.Read(int64(outputAddr), count*mem.BeatBytes)
	pairs := map[uint32]seqio.Pair{}
	for _, p := range set.Pairs {
		pairs[p.ID&core.BTIDMask] = p
	}
	dec := bt.NewDecoder(cfg)
	alignments, stats, err := dec.DecodeRegion(raw, count, pairs, false)
	if err != nil {
		log.Fatal(err)
	}
	for _, al := range alignments {
		if !al.Result.Success {
			fmt.Printf("pair %d: FAILED (unsupported read — the Extractor flags 'N' bases)\n", al.ID)
			continue
		}
		fmt.Printf("pair %d: score=%d, %d-column CIGAR, starts %.24s...\n",
			al.ID, al.Result.Score, len(al.Result.CIGAR), al.Result.CIGAR.String())
	}
	fmt.Printf("decoder touched %d of %d transactions (boundary jumps), walked %d ops\n",
		stats.TransactionsScanned, count, stats.WalkSteps)
}
