// Quickstart: align one pair of sequences on the simulated WFAsic SoC and
// compare it with the software WFA and the classical SWG baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/seqio"
	"repro/internal/soc"
	"repro/internal/swg"
	"repro/internal/wfa"
)

func main() {
	// Two short reads with a substitution, an insertion and a deletion.
	a := []byte("GATTACAGATTACAGATTACAGATTACA")
	b := []byte("GATTACAGATCACAGATTACAAGATTAC")

	// 1. The pure-software WFA (the paper's Equation 3) with backtrace.
	swRes, swStats, err := wfa.Align(a, b, align.DefaultPenalties, wfa.Options{WithCIGAR: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software WFA:  score=%d cigar=%s (computed %d wavefront cells)\n",
		swRes.Score, swRes.CIGAR, swStats.CellsComputed)

	// 2. The full-DP Smith-Waterman-Gotoh oracle (Equation 2).
	swgRes, swgStats := swg.Align(a, b, align.DefaultPenalties)
	fmt.Printf("SWG oracle:    score=%d cigar=%s (computed %d DP cells)\n",
		swgRes.Score, swgRes.CIGAR, swgStats.CellsComputed)

	// 3. The accelerated co-designed pipeline of Figure 4: the CPU writes
	// the pair into simulated main memory, the WFAsic accelerator aligns it
	// and streams the backtrace, and the CPU reconstructs the CIGAR.
	system, err := soc.New(core.ChipConfig(), 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	set := &seqio.InputSet{Pairs: []seqio.Pair{{ID: 1, A: a, B: b}}}
	rep, err := system.RunAccelerated(set, soc.RunOptions{Backtrace: true})
	if err != nil {
		log.Fatal(err)
	}
	hw := rep.Outcomes[0].Result
	fmt.Printf("WFAsic (sim):  score=%d cigar=%s\n", hw.Score, hw.CIGAR)
	fmt.Printf("               accelerator %d cycles + CPU backtrace %d cycles\n",
		rep.AccelCycles, rep.CPUBacktraceCycles)

	if hw.Score != swRes.Score || hw.Score != swgRes.Score {
		log.Fatalf("score disagreement: hw=%d wfa=%d swg=%d", hw.Score, swRes.Score, swgRes.Score)
	}
	if string(hw.CIGAR) != string(swRes.CIGAR) {
		log.Fatalf("CIGAR disagreement between hardware and software WFA")
	}
	fmt.Println("all three engines agree — the WFA is exact and the hardware is bit-faithful")
}
