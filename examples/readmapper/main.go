// Read mapping end-to-end: the application the paper motivates (Section 2.1)
// built on top of the simulated SoC. A synthetic reference is indexed with
// k-mers, reads sampled from known positions are seeded by diagonal voting,
// and the seed-extension step — the part WFAsic accelerates — runs on the
// simulated accelerator with backtrace, producing full CIGARs.
//
//	go run ./examples/readmapper
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/seqgen"
	"repro/internal/seqio"
	"repro/internal/soc"
)

func main() {
	const (
		refLen   = 50000
		numReads = 25
		readLen  = 400
		errRate  = 0.06
	)
	g := seqgen.New(4242, 1)
	ref := g.RandomSequence(refLen)

	ix, err := mapper.BuildIndex(ref, 15)
	if err != nil {
		log.Fatal(err)
	}
	m, err := mapper.New(ix, mapper.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Sample reads from known positions and mutate them.
	reads := make([]seqio.Pair, numReads)
	truth := make([]int, numReads)
	for i := range reads {
		start := i * (refLen - readLen) / numReads
		chunk := append([]byte(nil), ref[start:start+readLen]...)
		mutated, _ := g.Mutate(chunk, int(float64(readLen)*errRate))
		reads[i] = seqio.Pair{ID: uint32(i + 1), A: mutated}
		truth[i] = start
	}

	// Seed extension on the simulated WFAsic (backtrace enabled).
	cfg := core.ChipConfig()
	cfg.MaxReadLenCap = 512
	cfg.KMax = 256
	system, err := soc.New(cfg, 1<<27)
	if err != nil {
		log.Fatal(err)
	}
	mappings, rep, err := m.MapReadsAccelerated(system, reads)
	if err != nil {
		log.Fatal(err)
	}

	correct, mapped := 0, 0
	for i, mp := range mappings {
		if !mp.Mapped {
			fmt.Printf("read %2d: UNMAPPED (%d candidates)\n", mp.ReadID, mp.Candidates)
			continue
		}
		mapped++
		mark := " "
		if d := mp.RefStart - truth[i]; d >= -20 && d <= 20 {
			correct++
			mark = "*"
		}
		fmt.Printf("read %2d: ref:%6d score=%3d cigar=%.30s...%s\n",
			mp.ReadID, mp.RefStart, mp.Score, mp.CIGAR.String(), mark)
	}
	fmt.Printf("\nmapped %d/%d reads, %d at the true location (*)\n", mapped, numReads, correct)
	fmt.Printf("seed extension on the accelerator: %d cycles (+%d CPU backtrace cycles)\n",
		rep.AccelCycles, rep.CPUBacktraceCycles)

	// The same extension step on the modeled RISC-V CPU, for contrast.
	set, _ := m.ExtensionSet(reads)
	cpu, err := system.RunCPU(set, soc.CPUScalar, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the same extensions on the Sargantana scalar CPU: %d modeled cycles (%.0fx slower)\n",
		cpu.Cycles, float64(cpu.Cycles)/float64(rep.TotalCycles))
}
