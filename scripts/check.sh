#!/usr/bin/env bash
# check.sh — the repo's full correctness gate, kept identical to CI
# (.github/workflows/ci.yml) so a green local run means a green pipeline:
#
#   1. gofmt        formatting drift
#   2. go vet       the stock toolchain analyzers
#   3. wfasic-vet   the project-specific analyzers (determinism, panicpolicy,
#                   magicoffset, errpath, tickphase, regmap, doccomment,
#                   isolation, deepdeterminism, perfmono, hotalloc, suppress —
#                   see internal/lint), ratcheted against vet-baseline.json:
#                   new findings and stale baseline entries fail
#   4. callgraph    the interprocedural call graph and the hotalloc allocation
#                   map each dump byte-identically twice in a row (the CI
#                   artifact contract), and the analyzer fixtures still load
#                   and fire
#   5. go build     everything compiles, including examples
#   6. go test -race  the full suite under the race detector (the bench
#                     package takes a few minutes under -race; use
#                     SKIP_RACE=1 for a quick non-race pass)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
badfmt=$(gofmt -l .)
if [[ -n "$badfmt" ]]; then
    echo "gofmt needed on:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== wfasic-vet =="
go run ./cmd/wfasic-vet -baseline vet-baseline.json ./...

echo "== callgraph dump (byte-stability) =="
go run ./cmd/wfasic-vet -dump-callgraph callgraph.json
go run ./cmd/wfasic-vet -dump-callgraph callgraph.json.2
cmp callgraph.json callgraph.json.2
rm -f callgraph.json.2

echo "== allocs dump (byte-stability) =="
go run ./cmd/wfasic-vet -dump-allocs allocs.json
go run ./cmd/wfasic-vet -dump-allocs allocs.json.2
cmp allocs.json allocs.json.2
rm -f allocs.json.2

echo "== wfasic-vet fixtures =="
go run ./cmd/wfasic-vet -fixtures internal/lint/testdata/src > /dev/null

echo "== go build =="
go build ./...

if [[ "${SKIP_RACE:-0}" == "1" ]]; then
    echo "== go test (race detector skipped) =="
    go test ./...
else
    echo "== go test -race =="
    go test -race ./...
fi

# The suite above runs in the default event-skipping mode (WFASIC_SIM_MODE
# unset => skip). Re-running the golden-bearing packages under the naive
# ticker proves both simulation modes produce identical observables on every
# golden, chaos campaign and perf-counter snapshot — the equivalence
# contract of internal/core/skip.go. -count=1 so the cache cannot satisfy
# the second mode with the first mode's pass.
echo "== golden suite under the naive ticker (WFASIC_SIM_MODE=ticker) =="
if [[ "${SKIP_RACE:-0}" == "1" ]]; then
    WFASIC_SIM_MODE=ticker go test -short -count=1 ./internal/core/ ./internal/soc/
else
    WFASIC_SIM_MODE=ticker go test -count=1 ./internal/core/ ./internal/soc/
fi

# The seeded chaos campaign (internal/soc/chaos_test.go) re-runs explicitly
# with -count=1 so a cached pass can never mask a schedule regression: every
# campaign is pinned to a fault seed and must reproduce byte-identical fault
# schedules, bit-identical outcomes and identical cycle counts on every run.
# The quick pass uses the -short campaign; CI runs the full one under -race.
echo "== chaos campaign (pinned fault seeds) =="
if [[ "${SKIP_RACE:-0}" == "1" ]]; then
    go test -short -count=1 -run 'TestChaos' ./internal/soc/
else
    go test -count=1 -run 'TestChaos' ./internal/soc/
fi

# The silent-corruption campaign (internal/soc/sdc_test.go) is the SDC
# defense's acceptance bar: silent bit flips on, the all-pair oracle off,
# shadow sampling at most 5% — and every delivered answer must still equal
# the software WFA exactly, plus the exhaustive every-single-bit-flip sweep
# of the input witness. -count=1 for the same reason as above.
echo "== silent-corruption campaign (SDC defense, pinned seeds) =="
if [[ "${SKIP_RACE:-0}" == "1" ]]; then
    go test -short -count=1 -run 'TestChaosSilentZeroWrongAnswers|TestInputWitnessCatchesEverySingleBitFlip' ./internal/soc/
else
    go test -count=1 -run 'TestChaosSilentZeroWrongAnswers|TestInputWitnessCatchesEverySingleBitFlip' ./internal/soc/
fi

# The serving soak (internal/serve/soak_test.go) is the no-drop proof: ~50k
# pairs in -short mode with chaos injected on two devices mid-traffic, run
# twice and compared journal-byte for journal-byte. -count=1 for the same
# reason as the chaos campaign: it must actually execute.
echo "== serve soak (short, chaos on 2 devices) =="
if [[ "${SKIP_RACE:-0}" == "1" ]]; then
    go test -short -count=1 -run 'TestSoakChaosNoDrop' ./internal/serve/
else
    go test -race -short -count=1 -run 'TestSoakChaosNoDrop' ./internal/serve/
fi

# BENCH_8.json is the committed capacity model for the serving layer. The
# calibration and the queueing model are deterministic, so a diff means the
# service's cost model really changed and the snapshot must be regenerated
# deliberately (go run ./cmd/wfasic-serve -bench).
echo "== serve bench model (regen + diff) =="
go run ./cmd/wfasic-serve -bench -out serve-bench.json > /dev/null
diff BENCH_8.json serve-bench.json
rm -f serve-bench.json

# BENCH_9.json is the committed cost sheet for the SDC defense: the same
# seeded fault-free workload priced at every verification level (off,
# witness, 1%, 5%, full). Cycle counts are deterministic, so a diff means
# the defense's cost really changed and the snapshot must be regenerated
# deliberately (go run ./cmd/wfasic-serve -bench-integrity).
echo "== SDC-defense cost bench (regen + diff) =="
go run ./cmd/wfasic-serve -bench-integrity -out integrity-bench.json > /dev/null
diff BENCH_9.json integrity-bench.json
rm -f integrity-bench.json

# BENCH_10.json is the committed event-skipping/fleet artifact: per-profile
# tick-reduction factors (with the ticker-vs-skip equivalence asserted inside
# the experiment) and the fleet-determinism sweep. Lines carrying the "wall_"
# key prefix are host wall-clock measurements and are the only sanctioned
# nondeterminism — they are stripped before the diff; everything else must
# be byte-stable. Regenerate deliberately with
# go run ./cmd/wfasic-bench -exp fleet -fleet-json BENCH_10.json.
echo "== event-skipping/fleet bench (regen + diff, wall_ lines excluded) =="
go run ./cmd/wfasic-bench -exp fleet -fleet-json fleet-bench.json > /dev/null
diff <(grep -v '"wall_' BENCH_10.json) <(grep -v '"wall_' fleet-bench.json)
rm -f fleet-bench.json

echo "all checks passed"
