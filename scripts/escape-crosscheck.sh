#!/usr/bin/env bash
# escape-crosscheck.sh — keep the hotalloc classifier honest against the real
# compiler. The analyzer is deliberately syntactic-plus-types (it flags every
# allocation *construct* on a hot path, whether or not escape analysis would
# stack-allocate it), so the two views never match exactly; this script
# reports where they disagree so drift in either direction is visible:
#
#   - sites hotalloc flags on a hot path that the compiler never mentions as
#     a heap allocation (the analyzer's over-approximation — expected for
#     non-escaping makes and inlined closures, worth skimming for noise);
#   - "escapes to heap" lines the compiler emits in files that carry hot
#     alloc sites (a quick map of where the real allocations cluster).
#
# Purely informational: always exits 0. Run it when the classifier rules or
# the toolchain version change, and record anything surprising in
# EXPERIMENTS.md.
set -uo pipefail
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== hotalloc verdicts (wfasic-vet -dump-allocs) =="
go run ./cmd/wfasic-vet -dump-allocs "$tmpdir/allocs.json"

# Hot, non-exempt alloc sites as file:line. Node records carry "file"; the
# per-site "line" fields follow inside the "allocs" array.
awk '
    /"file":/   { gsub(/[",]/, "", $2); file = $2; hot = 0; inallocs = 0 }
    /"hot": true/     { hot = 1 }
    /"allocs": \[/    { inallocs = 1; next }
    inallocs && /"line":/ { gsub(/[",]/, "", $2); line = $2 }
    inallocs && /"exempt": true/ { line = "" }
    inallocs && /}/   { if (hot && line != "") print file ":" line; line = "" }
    /\]/              { inallocs = 0 }
' "$tmpdir/allocs.json" | sort -u > "$tmpdir/hot-sites.txt"

echo "== compiler escape analysis (go build -gcflags=-m) =="
go build -gcflags=-m ./... 2> "$tmpdir/escapes-raw.txt" || true
grep -E 'escapes to heap|moved to heap' "$tmpdir/escapes-raw.txt" \
    | sed -E 's/^([^:]+:[0-9]+):[0-9]+:.*/\1/' | sort -u > "$tmpdir/heap-lines.txt"

hot_total=$(wc -l < "$tmpdir/hot-sites.txt")
heap_total=$(wc -l < "$tmpdir/heap-lines.txt")
confirmed=$(comm -12 "$tmpdir/hot-sites.txt" "$tmpdir/heap-lines.txt" | wc -l)

echo
echo "hot alloc sites (analyzer):        $hot_total"
echo "heap escapes (compiler, anywhere): $heap_total"
echo "hot sites the compiler confirms:   $confirmed"
echo
echo "-- hot sites the compiler does NOT report as heap (over-approximation) --"
comm -23 "$tmpdir/hot-sites.txt" "$tmpdir/heap-lines.txt" | sed 's/^/  /'
echo
echo "-- compiler heap escapes in files carrying hot sites (context) --"
cut -d: -f1 "$tmpdir/hot-sites.txt" | sort -u > "$tmpdir/hot-files.txt"
grep -F -f "$tmpdir/hot-files.txt" "$tmpdir/heap-lines.txt" 2>/dev/null | sed 's/^/  /' || true

# Informational only: the analyzer's contract is "no allocation constructs",
# which is stricter than "no escapes", so disagreement is not a failure.
exit 0
