// Package repro's root benchmark suite regenerates every table and figure of
// the paper from the command line:
//
//	go test -bench . -benchmem
//
// Each BenchmarkTable*/BenchmarkFigure* runs the corresponding experiment of
// internal/bench and reports the headline quantities as custom metrics
// (cycles, speedups, GCUPS). The Benchmark{WFA,SWG,Machine,BTDecode}*
// benchmarks measure the underlying engines directly. The full tables are
// printed by cmd/wfasic-bench.
package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/bench"
	"repro/internal/bt"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/seqgen"
	"repro/internal/seqio"
	"repro/internal/soc"
	"repro/internal/swg"
	"repro/internal/wfa"
)

func benchParams() bench.Params {
	p := bench.QuickParams()
	p.MaxAligners = 4
	return p
}

// BenchmarkTable1 regenerates Table 1 (per-pair reading and alignment
// cycles, Equation 7 bound) and reports the 10K rows as metrics.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.AlignmentCycles), "aligncyc/"+r.Input)
		}
		b.ReportMetric(float64(rows[4].ReadingCycles), "readcyc/10K")
	}
}

// BenchmarkFigure9 regenerates the speedup study of Figure 9.
func BenchmarkFigure9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure9(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[5].SpeedupNoBT, "speedupNoBT/10K-10%")
		b.ReportMetric(rows[5].SpeedupBT, "speedupBT/10K-10%")
		b.ReportMetric(rows[0].SpeedupNoBT, "speedupNoBT/100-5%")
		b.ReportMetric(rows[0].SpeedupVector, "vector/100-5%")
	}
}

// BenchmarkFigure10 regenerates the multi-Aligner scalability study.
func BenchmarkFigure10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure10(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		last := len(rows[5].Speedup) - 1
		b.ReportMetric(rows[5].Speedup[last], fmt.Sprintf("scaling%d/10K-10%%", last+1))
		b.ReportMetric(rows[0].Speedup[last], fmt.Sprintf("scaling%d/100-5%%", last+1))
	}
}

// BenchmarkFigure11 regenerates the configuration comparison.
func BenchmarkFigure11(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure11(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[5].Rel[bench.Fig11OneAligner64NoSep], "noSepGain/10K-10%")
		b.ReportMetric(rows[0].Rel[bench.Fig11TwoAligners32Sep], "2x32PSGain/100-5%")
	}
}

// BenchmarkTable2 regenerates the GCUPS/area comparison.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Measured {
				continue
			}
			label := "BT"
			if strings.Contains(r.Platform, "Without") {
				label = "NoBT"
			}
			b.ReportMetric(r.GCUPS, "GCUPS/"+label)
			b.ReportMetric(r.GCUPSPerMM2, "GCUPSmm2/"+label)
		}
	}
}

// --- engine micro-benchmarks ---

var microSets = []struct {
	name   string
	length int
	rate   float64
}{
	{"100-5%", 100, 0.05},
	{"1K-5%", 1000, 0.05},
	{"1K-10%", 1000, 0.10},
	{"10K-5%", 10000, 0.05},
}

func microPair(length int, rate float64) seqio.Pair {
	g := seqgen.New(uint64(length), uint64(rate*1000))
	return g.Pair(1, length, rate)
}

// BenchmarkWFAScore measures the software WFA in score-only (ring buffer)
// mode.
func BenchmarkWFAScore(b *testing.B) {
	b.ReportAllocs()
	for _, s := range microSets {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			p := microPair(s.length, s.rate)
			b.SetBytes(int64(len(p.A) + len(p.B)))
			for i := 0; i < b.N; i++ {
				res, _, _ := wfa.Align(p.A, p.B, align.DefaultPenalties, wfa.Options{})
				if !res.Success {
					b.Fatal("alignment failed")
				}
			}
		})
	}
}

// BenchmarkWFABacktrace measures the software WFA with full CIGAR recovery.
func BenchmarkWFABacktrace(b *testing.B) {
	b.ReportAllocs()
	for _, s := range microSets {
		if s.length > 1000 {
			continue // full wavefront retention is O(s^2) memory
		}
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			p := microPair(s.length, s.rate)
			for i := 0; i < b.N; i++ {
				res, _, _ := wfa.Align(p.A, p.B, align.DefaultPenalties, wfa.Options{WithCIGAR: true})
				if len(res.CIGAR) == 0 {
					b.Fatal("no CIGAR")
				}
			}
		})
	}
}

// BenchmarkSWGScore measures the full-DP baseline (Equation 2).
func BenchmarkSWGScore(b *testing.B) {
	b.ReportAllocs()
	for _, s := range microSets {
		if s.length > 1000 {
			continue // O(n*m) cells
		}
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			p := microPair(s.length, s.rate)
			for i := 0; i < b.N; i++ {
				swg.Score(p.A, p.B, align.DefaultPenalties)
			}
		})
	}
}

// BenchmarkMachineAlign measures the cycle-level accelerator simulation
// end-to-end for one pair (image build, DMA, extract, align, collect).
func BenchmarkMachineAlign(b *testing.B) {
	b.ReportAllocs()
	for _, s := range microSets {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := core.ChipConfig()
			p := microPair(s.length, s.rate)
			if len(p.A) > cfg.MaxReadLenCap {
				p.A = p.A[:cfg.MaxReadLenCap]
			}
			if len(p.B) > cfg.MaxReadLenCap {
				p.B = p.B[:cfg.MaxReadLenCap]
			}
			set := &seqio.InputSet{Pairs: []seqio.Pair{p}}
			var cycles int64
			for i := 0; i < b.N; i++ {
				system, err := soc.New(cfg, 32<<20)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := system.RunAccelerated(set, soc.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.AccelCycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkBTDecode measures the CPU-side backtrace decoder on a
// pre-generated stream.
func BenchmarkBTDecode(b *testing.B) {
	b.ReportAllocs()
	cfg := core.ChipConfig()
	p := microPair(1000, 0.10)
	set := &seqio.InputSet{Pairs: []seqio.Pair{p}}
	system, err := soc.New(cfg, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	img, err := set.BuildImage()
	if err != nil {
		b.Fatal(err)
	}
	system.Memory.Write(0x1000, img)
	out := uint64(0x1000+len(img)+15) &^ 15
	if err := system.Driver.Configure(soc.JobConfig{
		InputAddr: 0x1000, OutputAddr: out,
		NumPairs: 1, MaxReadLen: set.EffectiveMaxReadLen(), Backtrace: true,
	}); err != nil {
		b.Fatal(err)
	}
	if err := system.Driver.Start(); err != nil {
		b.Fatal(err)
	}
	if _, err := system.Driver.PollIdle(1 << 40); err != nil {
		b.Fatal(err)
	}
	count, _ := system.Driver.OutCount()
	raw := system.Memory.Read(int64(out), count*mem.BeatBytes)
	pairs := map[uint32]seqio.Pair{p.ID: p}
	dec := bt.NewDecoder(cfg)
	b.ResetTimer()
	for _, sep := range []bool{false, true} {
		name := "noSep"
		if sep {
			name = "sep"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				if _, _, err := dec.DecodeRegion(raw, count, pairs, sep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtendUnit measures the hardware Extend comparator (16 bases per
// block, Figure 7).
func BenchmarkExtendUnit(b *testing.B) {
	b.ReportAllocs()
	g := seqgen.New(3, 3)
	seq := g.RandomSequence(10000)
	ramA, err := core.LoadSeqRAM(0, seq)
	if err != nil {
		b.Fatal(err)
	}
	ramB, err := core.LoadSeqRAM(0, seq) // identical: maximal extension
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(seq)))
	for i := 0; i < b.N; i++ {
		res := core.ExtendDiag(ramA, ramB, 0, 0)
		if res.Matches != len(seq) {
			b.Fatal("extension did not reach the end")
		}
	}
}

// BenchmarkImageBuild measures input-image serialization (the CPU's parse
// step of Figure 4).
func BenchmarkImageBuild(b *testing.B) {
	b.ReportAllocs()
	g := seqgen.New(5, 5)
	set := &seqio.InputSet{}
	for i := 0; i < 32; i++ {
		set.Pairs = append(set.Pairs, g.Pair(uint32(i), 1000, 0.05))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := set.BuildImage()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(img)))
	}
}
